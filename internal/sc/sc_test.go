package sc

import (
	"testing"

	"repro/internal/hist"
	"repro/internal/neural"
	"repro/internal/tage"
)

func newSC() (*Corrector, *hist.Global, *hist.Path, *hist.FoldedBank) {
	g := hist.NewGlobal(1024)
	path := hist.NewPath(32)
	bank := hist.NewFoldedBank()
	c := New(DefaultConfig(), path, bank)
	return c, g, path, bank
}

func tagePred(taken bool, conf tage.Confidence) tage.Prediction {
	return tage.Prediction{Taken: taken, Conf: conf}
}

func TestAgreesWithConfidentTageByDefault(t *testing.T) {
	c, _, _, _ := newSC()
	if got := c.Predict(0x40, tagePred(true, tage.HighConf)); !got {
		t.Error("fresh corrector overruled a high-confidence TAGE prediction")
	}
	c.Update(true)
	if got := c.Predict(0x44, tagePred(false, tage.HighConf)); got {
		t.Error("fresh corrector overruled a high-confidence not-taken prediction")
	}
	c.Update(false)
}

func TestRevertsStatisticallyWrongTage(t *testing.T) {
	// TAGE keeps predicting taken with low confidence while the branch
	// is always not-taken; the corrector must learn to revert.
	c, g, path, bank := newSC()
	pc := uint64(0x80)
	reverted := false
	for i := 0; i < 600; i++ {
		pred := c.Predict(pc, tagePred(true, tage.LowConf))
		c.Update(false)
		g.Push(false)
		path.Push(pc)
		bank.Push(g)
		if i > 100 && !pred {
			reverted = true
		}
	}
	if !reverted {
		t.Error("corrector never reverted a statistically wrong TAGE prediction")
	}
}

func TestHighConfidenceHarderToRevert(t *testing.T) {
	// Count how many updates the corrector needs before it reverts a
	// high-confidence vs a low-confidence TAGE prediction.
	flipPoint := func(conf tage.Confidence) int {
		c, g, path, bank := newSC()
		pc := uint64(0x100)
		for i := 0; i < 2000; i++ {
			pred := c.Predict(pc, tagePred(true, conf))
			if !pred {
				return i
			}
			c.Update(false)
			g.Push(false)
			path.Push(pc)
			bank.Push(g)
		}
		return 2000
	}
	low := flipPoint(tage.LowConf)
	high := flipPoint(tage.HighConf)
	if high <= low {
		t.Errorf("high-confidence TAGE flipped after %d updates, low after %d; want high > low", high, low)
	}
}

func TestSumExposed(t *testing.T) {
	c, _, _, _ := newSC()
	c.Predict(0x40, tagePred(true, tage.HighConf))
	if c.Sum() == 0 {
		t.Log("sum may legitimately be zero early; just ensure the accessor works")
	}
	c.Update(true)
}

func TestGlobalTablesExposed(t *testing.T) {
	c, _, _, _ := newSC()
	if len(c.GlobalTables()) != len(DefaultConfig().GlobalHists) {
		t.Errorf("GlobalTables = %d, want %d", len(c.GlobalTables()), len(DefaultConfig().GlobalHists))
	}
}

func TestStorageBits(t *testing.T) {
	c, _, _, _ := newSC()
	if c.StorageBits() <= 0 {
		t.Error("empty storage")
	}
	// Adding a component grows the reported storage.
	before := c.StorageBits()
	c.Tree().Add(fakeComp{})
	if c.StorageBits() != before+128 {
		t.Errorf("added component not reflected: %d -> %d", before, c.StorageBits())
	}
}

type fakeComp struct{}

func (fakeComp) Vote(neural.Ctx) int    { return 0 }
func (fakeComp) Name() string           { return "fake" }
func (fakeComp) StorageBits() int       { return 128 }
func (fakeComp) Train(neural.Ctx, bool) {}
