package sc

import (
	"testing"

	"repro/internal/hist"
	"repro/internal/num"
	"repro/internal/snap"
	"repro/internal/tage"
)

// TestSnapshotRoundTrip: a restored corrector (threshold, bias tables,
// global tables) combined with restored shared histories continues
// prediction-for-prediction identical to the uninterrupted one.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := num.NewRand(47)
	build := func() (*hist.Global, *hist.Path, *hist.FoldedBank, *Corrector) {
		g := hist.NewGlobal(256)
		path := hist.NewPath(27)
		bank := hist.NewFoldedBank()
		return g, path, bank, New(DefaultConfig(), path, bank)
	}
	g1, path1, bank1, c1 := build()
	confs := []tage.Confidence{tage.LowConf, tage.MedConf, tage.HighConf}
	drive := func(g *hist.Global, path *hist.Path, bank *hist.FoldedBank, c *Corrector, r *num.Rand, check func(step int, pred bool)) {
		for i := 0; i < 4000; i++ {
			pc := uint64(0x9000 + r.Intn(56)*4)
			taken := r.Bool()
			tp := tage.Prediction{Taken: r.Bool(), Conf: confs[r.Intn(3)], PCMix: num.Mix(pc >> 2)}
			pred := c.Predict(pc, tp)
			if check != nil {
				check(i, pred)
			}
			c.Update(taken)
			g.Push(taken)
			path.Push(pc)
			bank.Push(g)
		}
	}
	drive(g1, path1, bank1, c1, rng, nil)

	e := snap.NewEncoder()
	g1.Snapshot(e)
	path1.Snapshot(e)
	bank1.Snapshot(e)
	c1.Snapshot(e)
	g2, path2, bank2, c2 := build()
	d := snap.NewDecoder(e.Bytes())
	for _, s := range []snap.Snapshotter{g2, path2, bank2, c2} {
		if err := s.RestoreSnapshot(d); err != nil {
			t.Fatal(err)
		}
	}

	cont := rng.State()
	r1, r2 := num.NewRand(1), num.NewRand(1)
	r1.SetState(cont)
	r2.SetState(cont)
	var preds []bool
	drive(g1, path1, bank1, c1, r1, func(_ int, pred bool) { preds = append(preds, pred) })
	i := 0
	drive(g2, path2, bank2, c2, r2, func(step int, pred bool) {
		if pred != preds[i] {
			t.Fatalf("corrector prediction diverged at step %d", step)
		}
		i++
	})
}
