package sc

import (
	"testing"

	"repro/internal/hist"
	"repro/internal/neural"
	"repro/internal/tage"
)

// TestCorrectorNoiseTolerance: a noisy extra component must not drag
// down an otherwise confident corrector — the §4.3.2 "weight
// reinforcement compensates" argument at the SC level.
func TestCorrectorNoiseTolerance(t *testing.T) {
	run := func(withNoise bool) int {
		g := hist.NewGlobal(1024)
		path := hist.NewPath(32)
		bank := hist.NewFoldedBank()
		c := New(DefaultConfig(), path, bank)
		if withNoise {
			c.Tree().Add(noiseComp{})
		}
		miss := 0
		// A branch TAGE predicts perfectly.
		for i := 0; i < 4000; i++ {
			taken := i%3 != 2
			pred := c.Predict(0x40, tage.Prediction{Taken: taken, Conf: tage.HighConf})
			if pred != taken && i > 500 {
				miss++
			}
			c.Update(taken)
			g.Push(taken)
			path.Push(0x40)
			bank.Push(g)
		}
		return miss
	}
	clean := run(false)
	noisy := run(true)
	if noisy > clean+80 {
		t.Errorf("noise component degraded the corrector: %d vs %d misses", noisy, clean)
	}
}

// noiseComp votes pseudo-randomly — a worst-case useless component.
type noiseComp struct{}

func (noiseComp) Vote(ctx neural.Ctx) int {
	// Deterministic hash-noise in [-8, 7].
	h := ctx.PC*0x9E3779B97F4A7C15 + 12345
	return int(h>>60) - 8
}
func (noiseComp) Train(neural.Ctx, bool) {}
func (noiseComp) Name() string           { return "noise" }
func (noiseComp) StorageBits() int       { return 0 }
