// Package sc implements the statistical corrector of the paper's
// reference TAGE-GSC predictor (Figure 5): a neural adder tree that
// takes the TAGE prediction as an input and either confirms it (the
// common case) or reverts it when TAGE has statistically mispredicted
// in similar circumstances.
//
// The corrector's component list is open: the base GSC uses bias
// tables (indexed with PC + TAGE prediction) and global-history
// tables; the paper's IMLI components and the local-history components
// of TAGE-SC-L plug into the same tree.
package sc

import (
	"repro/internal/hist"
	"repro/internal/neural"
	"repro/internal/tage"
)

// Config sizes the statistical corrector.
type Config struct {
	// BiasEntries is the per-bias-table entry count (two bias tables).
	BiasEntries int
	// GlobalEntries is the per-global-table entry count.
	GlobalEntries int
	// GlobalHists lists the history length of each global table.
	GlobalHists []int
	// CtrBits is the counter width of all tables.
	CtrBits int
	// InitialTheta seeds the adaptive threshold.
	InitialTheta int
	// TageVoteHigh/Med/Low weight the TAGE prediction in the sum by
	// TAGE confidence.
	TageVoteHigh, TageVoteMed, TageVoteLow int
}

// DefaultConfig returns a small GSC (~24 Kbits) matching the balance
// of the paper's 228 Kbit TAGE-GSC (TAGE dominates the budget).
func DefaultConfig() Config {
	return Config{
		BiasEntries:   1024,
		GlobalEntries: 512,
		GlobalHists:   []int{4, 10, 16, 27},
		CtrBits:       6,
		InitialTheta:  35,
		TageVoteHigh:  64,
		TageVoteMed:   32,
		TageVoteLow:   8,
	}
}

// Corrector is a statistical corrector predictor.
type Corrector struct {
	cfg     Config
	tree    *neural.Tree
	bias    []*neural.BiasTable
	globals []*neural.GlobalTable

	lastSum int        //lint:allow snapcomplete Predict-to-Train scratch, dead at branch-boundary snapshot points
	lastCtx neural.Ctx //lint:allow snapcomplete Predict-to-Train scratch, dead at branch-boundary snapshot points
	partial int        //lint:allow snapcomplete staged-predict scratch, dead at branch-boundary snapshot points
}

// New returns a corrector over the shared path history, allocating
// its folded global-history registers in bank. A nil bank gets a
// private one (standalone use); retrieve it from any global table's
// Bank and Push it after every history push.
func New(cfg Config, path *hist.Path, bank *hist.FoldedBank) *Corrector {
	c := &Corrector{cfg: cfg}
	if bank == nil {
		bank = hist.NewFoldedBank()
	}
	bias := neural.NewBiasTable("gsc-bias", cfg.BiasEntries, cfg.CtrBits, 0)
	biasSK := neural.NewBiasTable("gsc-bias-sk", cfg.BiasEntries, cfg.CtrBits, 0xfeedface)
	c.bias = []*neural.BiasTable{bias, biasSK}
	comps := []neural.Component{bias, biasSK}
	for i, h := range cfg.GlobalHists {
		t := neural.NewGlobalTable("gsc-g"+string(rune('0'+i)), cfg.GlobalEntries, cfg.CtrBits, h, path, bank)
		c.globals = append(c.globals, t)
		comps = append(comps, t)
	}
	c.tree = neural.NewTree(cfg.InitialTheta, comps...)
	return c
}

// Tree exposes the adder tree so configurations can add components
// (IMLI, local history).
func (c *Corrector) Tree() *neural.Tree { return c.tree }

// GlobalTables returns the corrector's global-history tables; the
// paper's §4.2 refinement inserts the IMLI counter into the indices of
// two of them.
func (c *Corrector) GlobalTables() []*neural.GlobalTable { return c.globals }

func (c *Corrector) tageVote(pred tage.Prediction) int {
	var w int
	switch pred.Conf {
	case tage.HighConf:
		w = c.cfg.TageVoteHigh
	case tage.MedConf:
		w = c.cfg.TageVoteMed
	default:
		w = c.cfg.TageVoteLow
	}
	if pred.Taken {
		return w
	}
	return -w
}

// Predict combines the TAGE prediction with the corrector components
// and returns the final direction. Must be followed by Update for the
// same branch. The PC hash computed by the TAGE Predict travels in
// tagePred.PCMix so the corrector's tables reuse it.
func (c *Corrector) Predict(pc uint64, tagePred tage.Prediction) bool {
	c.lastCtx = neural.Ctx{PC: pc, PCMix: tagePred.PCMix, TagePred: tagePred.Taken}
	c.lastSum = c.tree.Sum(c.lastCtx) + c.tageVote(tagePred)
	return c.lastSum >= 0
}

// Sum returns the last combined sum (for confidence inspection).
func (c *Corrector) Sum() int { return c.lastSum }

// Update trains the corrector with the resolved outcome.
func (c *Corrector) Update(taken bool) {
	c.tree.Train(c.lastCtx, taken, c.lastSum)
}

// StageIndex is predict stage 1 for the corrector: it registers the
// branch context the later stages index with. pcMix is the PC hash the
// TAGE IndexStage already computed; the TAGE prediction is not
// resolved yet, so the ctx carries an unresolved TagePred.
func (c *Corrector) StageIndex(pc, pcMix uint64) {
	c.lastCtx = neural.Ctx{PC: pc, PCMix: pcMix}
}

// StageLoad is predict stage 2: every component's fused
// index/load/vote (one dispatch per component, matching Sum). Bias
// tables load both candidates of their pair and defer the
// TagePred-dependent selection to StageCombine; the partial sum of
// everything else is recorded in scratch.
func (c *Corrector) StageLoad() { c.partial = c.tree.StagePredict(c.lastCtx) }

// StageCombine is predict stage 3: resolve the TAGE prediction into
// the ctx, add the deferred bias votes and the weighted TAGE vote to
// the stage-2 partial sum and return the final direction. Equivalent
// to Predict over the same state; must be followed by UpdateStaged (or
// Update) for the branch.
func (c *Corrector) StageCombine(tagePred tage.Prediction) bool {
	c.lastCtx.TagePred = tagePred.Taken
	c.lastSum = c.tree.StageFinishSum(c.lastCtx, c.partial) + c.tageVote(tagePred)
	return c.lastSum >= 0
}

// UpdateStaged trains the corrector using the indices recorded by the
// staged predict, avoiding the index recomputation of Update.
func (c *Corrector) UpdateStaged(taken bool) {
	c.tree.StageTrain(c.lastCtx, taken, c.lastSum)
}

// StorageBits returns the corrector storage cost.
func (c *Corrector) StorageBits() int { return c.tree.StorageBits() }
