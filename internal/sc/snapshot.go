package sc

import "repro/internal/snap"

// Snapshot implements snap.Snapshotter (DESIGN.md §8): the adder
// tree's threshold state plus the corrector's own tables (bias and
// global-history). Components added to the tree from outside (IMLI,
// local history) snapshot through the composite that owns them, and
// the folded registers live in the shared FoldedBank.
func (c *Corrector) Snapshot(e *snap.Encoder) {
	e.Begin("sc", 1)
	c.tree.Snapshot(e)
	e.U32(uint32(len(c.bias)))
	for _, b := range c.bias {
		b.Snapshot(e)
	}
	e.U32(uint32(len(c.globals)))
	for _, g := range c.globals {
		g.Snapshot(e)
	}
}

// RestoreSnapshot implements snap.Snapshotter.
func (c *Corrector) RestoreSnapshot(d *snap.Decoder) error {
	d.Expect("sc", 1)
	if err := c.tree.RestoreSnapshot(d); err != nil {
		return err
	}
	if n := int(d.U32()); d.Err() == nil && n != len(c.bias) {
		d.Fail("sc: %d bias tables where %d expected", n, len(c.bias))
	}
	for _, b := range c.bias {
		if err := b.RestoreSnapshot(d); err != nil {
			return err
		}
	}
	if n := int(d.U32()); d.Err() == nil && n != len(c.globals) {
		d.Fail("sc: %d global tables where %d expected", n, len(c.globals))
	}
	for _, g := range c.globals {
		if err := g.RestoreSnapshot(d); err != nil {
			return err
		}
	}
	return d.Err()
}
