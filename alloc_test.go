// Steady-state allocation gate for the predict/train hot path. The
// flattened history layer (hist.FoldedBank, DESIGN.md §7) makes the
// whole per-branch round-trip allocation-free once a predictor is
// warmed up; this test locks that in for every registry configuration
// and is run as a dedicated CI step.
//
// The entry points driven here come from internal/hotlist — the same
// source of truth the static hotpath analyzer roots its call graph at
// — so the runtime gate and the vet-time gate cannot drift apart: a
// hot entry added to the list without a driver below fails this test.
package imli_test

import (
	"testing"

	"repro/internal/hotlist"
	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// drivers maps each hotlist entry method to the call that exercises it
// for one record. Predict and Train fire on conditional branches,
// TrackOther on everything else — together they cover the per-branch
// protocol the engine runs (DESIGN.md §7). The staged entries run the
// same record through the interleaved driver's protocol (DESIGN.md
// §13): the three predict stages, the split train halves and the
// batched history advance. They no-op for registry adapters that are
// not composites (the engine's interleaved path falls back to the
// serial driver for those).
func drivers(p predictor.Predictor) map[string]func(trace.Record) {
	comp, _ := p.(*predictor.Composite)
	var adv predictor.Advancer
	cs := []*predictor.Composite{comp}
	ev := make([]predictor.Advance, 1)
	return map[string]func(trace.Record){
		"Predict": func(r trace.Record) {
			if r.Conditional() {
				p.Predict(r.PC)
			}
		},
		"Train": func(r trace.Record) {
			if r.Conditional() {
				p.Train(r.PC, r.Target, r.Taken)
			}
		},
		"TrackOther": func(r trace.Record) {
			if !r.Conditional() {
				p.TrackOther(r.PC, r.Target, r.Kind, r.Taken)
			}
		},
		"PredictStage1": func(r trace.Record) {
			if comp != nil && r.Conditional() {
				comp.PredictStage1(r.PC)
			}
		},
		"PredictStage2": func(r trace.Record) {
			if comp != nil && r.Conditional() {
				comp.PredictStage2()
			}
		},
		"PredictStage3": func(r trace.Record) {
			if comp != nil && r.Conditional() {
				comp.PredictStage3()
			}
		},
		"TrainTables": func(r trace.Record) {
			if comp != nil && r.Conditional() {
				comp.TrainTables(r.PC, r.Target, r.Taken)
			}
		},
		"SpecPush": func(r trace.Record) {
			if comp != nil && r.Conditional() {
				comp.SpecPush(r.PC, r.Target, r.Taken)
			}
		},
		"Advance": func(r trace.Record) {
			if comp == nil {
				return
			}
			ev[0] = predictor.Advance{PC: r.PC, Target: r.Target, Taken: r.Taken, Conditional: r.Conditional()}
			adv.Advance(cs, ev)
		},
	}
}

// TestPredictTrainZeroAlloc drives every registry configuration over a
// multi-kernel record stream and requires zero heap allocations per
// branch in steady state.
func TestPredictTrainZeroAlloc(t *testing.T) {
	bench, err := workload.ByName("SPEC2K6-12")
	if err != nil {
		t.Fatal(err)
	}
	var recs []trace.Record
	bench.Generate(4096, func(r trace.Record) { recs = append(recs, r) })

	for _, config := range predictor.Names() {
		p := predictor.MustNew(config)
		byMethod := drivers(p)
		entries := make([]func(trace.Record), 0, len(hotlist.Methods()))
		for _, m := range hotlist.Methods() {
			d, ok := byMethod[m]
			if !ok {
				t.Fatalf("hotlist entry %q has no driver in alloc_test.go: the runtime gate no longer covers the static gate's roots", m)
			}
			entries = append(entries, d)
		}
		feed := func(r trace.Record) {
			for _, d := range entries {
				d(r)
			}
		}
		// Warm up: TAGE allocation churn, loop/wormhole entry
		// allocation and table growth all happen against fixed
		// pre-sized storage, but give every component a full pass
		// before measuring anyway.
		for _, r := range recs {
			feed(r)
		}
		i := 0
		avg := testing.AllocsPerRun(2000, func() {
			feed(recs[i%len(recs)])
			i++
		})
		if avg != 0 {
			t.Errorf("%s: %v allocs per branch in steady state, want 0", config, avg)
		}
	}
}
