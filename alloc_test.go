// Steady-state allocation gate for the predict/train hot path. The
// flattened history layer (hist.FoldedBank, DESIGN.md §7) makes the
// whole per-branch round-trip allocation-free once a predictor is
// warmed up; this test locks that in for every registry configuration
// and is run as a dedicated CI step.
package imli_test

import (
	"testing"

	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestPredictTrainZeroAlloc drives every registry configuration over a
// multi-kernel record stream and requires zero heap allocations per
// branch in steady state.
func TestPredictTrainZeroAlloc(t *testing.T) {
	bench, err := workload.ByName("SPEC2K6-12")
	if err != nil {
		t.Fatal(err)
	}
	var recs []trace.Record
	bench.Generate(4096, func(r trace.Record) { recs = append(recs, r) })

	for _, config := range predictor.Names() {
		p := predictor.MustNew(config)
		feed := func(r trace.Record) {
			if r.Conditional() {
				p.Predict(r.PC)
				p.Train(r.PC, r.Target, r.Taken)
			} else {
				p.TrackOther(r.PC, r.Target, r.Kind, r.Taken)
			}
		}
		// Warm up: TAGE allocation churn, loop/wormhole entry
		// allocation and table growth all happen against fixed
		// pre-sized storage, but give every component a full pass
		// before measuring anyway.
		for _, r := range recs {
			feed(r)
		}
		i := 0
		avg := testing.AllocsPerRun(2000, func() {
			feed(recs[i%len(recs)])
			i++
		})
		if avg != 0 {
			t.Errorf("%s: %v allocs per branch in steady state, want 0", config, avg)
		}
	}
}
